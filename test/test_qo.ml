(* Tests for the QO_N cost model and the optimizer portfolio, over both
   cost domains. *)

module NR = Qo.Instances.Nl_rat
module OR_ = Qo.Instances.Opt_rat
module NL = Qo.Instances.Nl_log
module OL = Qo.Instances.Opt_log
module IKR = Qo.Instances.Ik_rat
module IKL = Qo.Instances.Ik_log
module RC = Qo.Rat_cost

let rc = Alcotest.testable (fun fmt v -> RC.pp fmt v) RC.equal

(* tiny substring helper (no astring dependency) *)
module Astring_like = struct
  let contains haystack needle =
    let nh = String.length haystack and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
    nn = 0 || go 0
end

(* Random valid rational instance generator. *)
let gen_instance =
  QCheck2.Gen.(
    let* n = int_range 2 7 in
    let* seed = int_range 0 10_000 in
    let* p = float_range 0.2 0.9 in
    let st = Random.State.make [| seed; 77 |] in
    let g = Graphlib.Gen.gnp ~seed ~n ~p in
    let sizes = Array.init n (fun _ -> RC.of_int (1 + Random.State.int st 50)) in
    let sel = Array.make_matrix n n RC.one in
    let w = Array.make_matrix n n RC.zero in
    List.iter
      (fun (i, j) ->
        let s = RC.of_ints 1 (1 + Random.State.int st 20) in
        sel.(i).(j) <- s;
        sel.(j).(i) <- s)
      (Graphlib.Ugraph.edges g);
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if i <> j then
          if Graphlib.Ugraph.has_edge g i j then
            w.(i).(j) <-
              RC.min sizes.(i)
                (RC.max (RC.mul sizes.(i) sel.(i).(j)) (RC.of_int (1 + Random.State.int st 10)))
          else w.(i).(j) <- sizes.(i)
      done
    done;
    return (NR.make ~graph:g ~sel ~sizes ~w))

(* A tree-query instance. *)
let gen_tree_instance =
  QCheck2.Gen.(
    let* n = int_range 2 8 in
    let* seed = int_range 0 10_000 in
    let st = Random.State.make [| seed; 99 |] in
    let g = Graphlib.Gen.random_tree ~seed ~n in
    let sizes = Array.init n (fun _ -> RC.of_int (2 + Random.State.int st 40)) in
    let sel = Array.make_matrix n n RC.one in
    let w = Array.make_matrix n n RC.zero in
    List.iter
      (fun (i, j) ->
        let s = RC.of_ints 1 (1 + Random.State.int st 15) in
        sel.(i).(j) <- s;
        sel.(j).(i) <- s)
      (Graphlib.Ugraph.edges g);
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if i <> j then
          if Graphlib.Ugraph.has_edge g i j then
            w.(i).(j) <-
              RC.min sizes.(i)
                (RC.max (RC.mul sizes.(i) sel.(i).(j)) (RC.of_int (1 + Random.State.int st 8)))
          else w.(i).(j) <- sizes.(i)
      done
    done;
    return (NR.make ~graph:g ~sel ~sizes ~w))

(* -------------------- hand-computed example -------------------- *)

(* Two relations R0 (100 tuples), R1 (20 tuples), selectivity 1/10,
   w_01 = 15, w_10 = 2.
   Z = (0,1): H_1 = N({0}) * w_{1,0} = 100 * 2 = 200.
   Z = (1,0): H_1 = 20 * 15 = 300. *)
let test_hand_example () =
  let g = Graphlib.Ugraph.of_edges 2 [ (0, 1) ] in
  let sel = [| [| RC.one; RC.of_ints 1 10 |]; [| RC.of_ints 1 10; RC.one |] |] in
  let sizes = [| RC.of_int 100; RC.of_int 20 |] in
  let w = [| [| RC.zero; RC.of_int 15 |]; [| RC.of_int 2; RC.zero |] |] in
  let inst = NR.make ~graph:g ~sel ~sizes ~w in
  Alcotest.(check rc) "cost (0,1)" (RC.of_int 200) (NR.cost inst [| 0; 1 |]);
  Alcotest.(check rc) "cost (1,0)" (RC.of_int 300) (NR.cost inst [| 1; 0 |]);
  (* N after the join: 100 * 20 / 10 = 200 *)
  Alcotest.(check rc) "intermediate size" (RC.of_int 200)
    (NR.intermediate_sizes inst [| 0; 1 |]).(0);
  let p = OR_.dp inst in
  Alcotest.(check rc) "optimal cost" (RC.of_int 200) p.OR_.cost

(* Three relations in a path 0-1-2: check a cartesian product is
   detected and off-edge access costs full size. *)
let test_cartesian_detection () =
  let g = Graphlib.Ugraph.of_edges 3 [ (0, 1); (1, 2) ] in
  let mk_sel v = v in
  let s = RC.of_ints 1 2 in
  let sel =
    [| [| RC.one; s; RC.one |]; [| s; RC.one; s |]; [| RC.one; s; RC.one |] |] |> mk_sel
  in
  let sizes = [| RC.of_int 10; RC.of_int 10; RC.of_int 10 |] in
  let w =
    Array.init 3 (fun i ->
        Array.init 3 (fun j ->
            if i <> j && Graphlib.Ugraph.has_edge g i j then RC.of_int 5 else sizes.(i)))
  in
  let inst = NR.make ~graph:g ~sel ~sizes ~w in
  Alcotest.(check bool) "0,2,1 has cartesian" true (NR.has_cartesian inst [| 0; 2; 1 |]);
  Alcotest.(check bool) "0,1,2 no cartesian" false (NR.has_cartesian inst [| 0; 1; 2 |]);
  (* cost with cartesian: H_1 = 10 * w_{2,0} = 10 * t_2 = 100;
     then H_2 = N({0,2}) * min(w_{1,0}, w_{1,2}) = 100 * 5 = 500 *)
  Alcotest.(check rc) "cartesian cost" (RC.of_int 600) (NR.cost inst [| 0; 2; 1 |]);
  Alcotest.(check int) "back edges" 0 (NR.back_edges inst [| 0; 2; 1 |] 2);
  Alcotest.(check int) "back edges of 1" 2 (NR.back_edges inst [| 0; 2; 1 |] 3)

let test_validation_errors () =
  let g = Graphlib.Ugraph.of_edges 2 [ (0, 1) ] in
  let sizes = [| RC.of_int 10; RC.of_int 10 |] in
  let s = RC.of_ints 1 2 in
  let sel = [| [| RC.one; s |]; [| s; RC.one |] |] in
  (* w below t*s *)
  let w_low = [| [| RC.zero; RC.of_int 10 |]; [| RC.of_int 4; RC.zero |] |] in
  Alcotest.check_raises "w below t*s" (Invalid_argument "Nl.make: w.(1).(0) below t_i * s_ij")
    (fun () -> ignore (NR.make ~graph:g ~sel ~sizes ~w:w_low));
  (* w above t *)
  let w_high = [| [| RC.zero; RC.of_int 11 |]; [| RC.of_int 5; RC.zero |] |] in
  Alcotest.check_raises "w above t" (Invalid_argument "Nl.make: w.(0).(1) above t_i") (fun () ->
      ignore (NR.make ~graph:g ~sel ~sizes ~w:w_high));
  (* asymmetric selectivity *)
  let sel_bad = [| [| RC.one; s |]; [| RC.of_ints 1 3; RC.one |] |] in
  let w_ok = [| [| RC.zero; RC.of_int 5 |]; [| RC.of_int 5; RC.zero |] |] in
  Alcotest.check_raises "asymmetric sel" (Invalid_argument "Nl.make: selectivity not symmetric")
    (fun () -> ignore (NR.make ~graph:g ~sel:sel_bad ~sizes ~w:w_ok))

(* -------------------- properties -------------------- *)

let prop_dp_equals_exhaustive =
  QCheck2.Test.make ~name:"subset DP = exhaustive enumeration" ~count:60 gen_instance (fun inst ->
      RC.equal (OR_.dp inst).OR_.cost (OR_.exhaustive inst).OR_.cost)

let prop_heuristics_upper_bound =
  QCheck2.Test.make ~name:"greedy/II/SA are upper bounds on the optimum" ~count:40 gen_instance
    (fun inst ->
      let opt = (OR_.dp inst).OR_.cost in
      RC.compare (OR_.greedy ~mode:OR_.Min_cost inst).OR_.cost opt >= 0
      && RC.compare (OR_.greedy ~mode:OR_.Min_size inst).OR_.cost opt >= 0
      && RC.compare (OR_.iterative_improvement ~restarts:2 ~max_steps:200 inst).OR_.cost opt >= 0
      && RC.compare (OR_.simulated_annealing ~steps:500 inst).OR_.cost opt >= 0
      && RC.compare (OR_.genetic ~population:20 ~generations:30 inst).OR_.cost opt >= 0)

let prop_dp_no_cartesian_dominates =
  QCheck2.Test.make ~name:"no-cartesian optimum >= unrestricted optimum" ~count:60 gen_instance
    (fun inst ->
      let a = (OR_.dp inst).OR_.cost and b = (OR_.dp_no_cartesian inst).OR_.cost in
      RC.compare b a >= 0)

let prop_dp_plan_cost_consistent =
  QCheck2.Test.make ~name:"returned plan evaluates to returned cost" ~count:60 gen_instance
    (fun inst ->
      let p = OR_.dp inst in
      RC.equal (NR.cost inst p.OR_.seq) p.OR_.cost)

let prop_size_set_invariance =
  QCheck2.Test.make ~name:"N(X) depends only on the set (permutation invariant)" ~count:60
    gen_instance (fun inst ->
      let n = NR.n inst in
      QCheck2.assume (n >= 3);
      let z1 = Array.init n (fun i -> i) in
      let z2 = Array.init n (fun i -> if i = 0 then 1 else if i = 1 then 0 else i) in
      let s1 = NR.intermediate_sizes inst z1 and s2 = NR.intermediate_sizes inst z2 in
      (* after position 2 the prefixes coincide as sets *)
      let ok = ref true in
      for i = 1 to n - 2 do
        if not (RC.equal s1.(i) s2.(i)) then ok := false
      done;
      !ok)

let prop_log_matches_rational =
  QCheck2.Test.make ~name:"log-domain cost = rational cost (to 1e-6 bits)" ~count:60 gen_instance
    (fun inst ->
      let li = Qo.Instances.log_of_rat inst in
      let pr = OR_.dp inst and pl = OL.dp li in
      Float.abs (RC.to_log2 pr.OR_.cost -. Logreal.to_log2 pl.OL.cost) < 1e-6)

let prop_ik_tree_optimal =
  QCheck2.Test.make ~name:"IK = no-cartesian DP on tree queries" ~count:80 gen_tree_instance
    (fun inst ->
      let cik, seq = IKR.solve inst in
      let pd = OR_.dp_no_cartesian inst in
      RC.equal cik pd.OR_.cost && RC.equal (NR.cost inst seq) cik)

(* Same boundary in the float domain: the optimum matches up to log2
   tolerance (IK and the DP add costs in different orders). *)
let prop_ik_tree_optimal_log =
  QCheck2.Test.make ~name:"IK = no-cartesian DP on tree queries (log domain)" ~count:80
    QCheck2.Gen.(
      let* n = int_range 2 8 in
      let* seed = int_range 0 10_000 in
      return (Qo.Gen_inst.L.tree ~seed ~n ()))
    (fun inst ->
      let close a b =
        let la = Qo.Log_cost.to_log2 a and lb = Qo.Log_cost.to_log2 b in
        la = lb || Float.abs (la -. lb) <= 1e-6
      in
      let cik, seq = IKL.solve inst in
      let pd = OL.dp_no_cartesian inst in
      close cik pd.OL.cost && close (NL.cost inst seq) cik)

let prop_profile_sums =
  QCheck2.Test.make ~name:"cost = sum of join costs" ~count:60 gen_instance (fun inst ->
      let n = NR.n inst in
      let z = Array.init n (fun i -> i) in
      let h = NR.join_costs inst z in
      RC.equal (Array.fold_left RC.add RC.zero h) (NR.cost inst z))

let prop_uniform_instance =
  QCheck2.Test.make ~name:"uniform instance validates and is symmetric" ~count:40
    QCheck2.Gen.(pair (int_range 2 10) (int_range 0 1000))
    (fun (n, seed) ->
      let g = Graphlib.Gen.gnp ~seed ~n ~p:0.5 in
      let inst =
        NL.uniform ~graph:g ~size:(Qo.Log_cost.of_int 64)
          ~edge_sel:(Qo.Log_cost.of_log2 (-3.0))
          ~edge_w:(Qo.Log_cost.of_int 8)
      in
      NL.n inst = n)

(* -------------------- Gen_inst / Explain -------------------- *)

let prop_gen_inst_valid =
  QCheck2.Test.make ~name:"library generators produce valid instances" ~count:60
    QCheck2.Gen.(pair (int_range 2 12) (int_range 0 5000))
    (fun (n, seed) ->
      (* Nl.make validates the access-path constraints; reaching here
         without Invalid_argument is the property *)
      let a = Qo.Gen_inst.R.random ~seed ~n ~p:0.5 () in
      let b = Qo.Gen_inst.R.tree ~seed ~n () in
      let c = Qo.Gen_inst.R.chain ~seed ~n () in
      let d = Qo.Gen_inst.L.random ~seed ~n ~p:0.4 () in
      let e = Qo.Gen_inst.L.tree_plus ~seed ~n ~extra:2 () in
      NR.n a = n && NR.n b = n && NR.n c = n && NL.n d = n && NL.n e = n)

let prop_gen_inst_deterministic =
  QCheck2.Test.make ~name:"generators are deterministic in the seed" ~count:30
    QCheck2.Gen.(pair (int_range 2 8) (int_range 0 5000))
    (fun (n, seed) ->
      let a = Qo.Gen_inst.R.random ~seed ~n ~p:0.5 () in
      let b = Qo.Gen_inst.R.random ~seed ~n ~p:0.5 () in
      let za = (OR_.dp a).OR_.cost and zb = (OR_.dp b).OR_.cost in
      Qo.Rat_cost.equal za zb)

let test_explain_render () =
  let inst = Qo.Gen_inst.R.chain ~seed:3 ~n:4 () in
  let p = OR_.dp inst in
  let text = Qo.Explain.Rat.render inst p.OR_.seq in
  Alcotest.(check bool) "mentions every relation" true
    (List.for_all (fun r -> Astring_like.contains text r) [ "R0"; "R1"; "R2"; "R3" ]);
  Alcotest.(check bool) "has total cost line" true (Astring_like.contains text "total cost");
  let s = Qo.Explain.Rat.summary inst p.OR_.seq in
  Alcotest.(check bool) "summary has cost" true (Astring_like.contains s "cost=")

(* -------------------- parallel DP ≡ sequential DP -------------------- *)

(* The layer-parallel subset DP must be bit-identical to the sequential
   path: same cost, same sequence, in both cost domains, including
   instances large enough (n up to 14) for real multi-chunk layers. *)

let gen_big_instance =
  QCheck2.Gen.(
    let* n = int_range 8 14 in
    let* seed = int_range 0 10_000 in
    return (Qo.Gen_inst.R.random ~seed ~n ~p:0.5 ()))

let with_test_pool f = Pool.with_pool ~jobs:4 f

let prop_dp_parallel_equiv_rat =
  QCheck2.Test.make ~name:"parallel dp ≡ sequential dp (rational)" ~count:40 gen_instance
    (fun inst ->
      with_test_pool (fun pool ->
          let s = OR_.dp inst and p = OR_.dp ~pool inst in
          RC.equal s.OR_.cost p.OR_.cost && s.OR_.seq = p.OR_.seq))

let prop_dp_parallel_equiv_rat_big =
  QCheck2.Test.make ~name:"parallel dp ≡ sequential dp (rational, n up to 14)" ~count:8
    gen_big_instance (fun inst ->
      with_test_pool (fun pool ->
          let s = OR_.dp inst and p = OR_.dp ~pool inst in
          RC.equal s.OR_.cost p.OR_.cost && s.OR_.seq = p.OR_.seq))

let prop_dp_nc_parallel_equiv_rat =
  QCheck2.Test.make ~name:"parallel dp_no_cartesian ≡ sequential (rational)" ~count:40
    gen_instance (fun inst ->
      with_test_pool (fun pool ->
          let s = OR_.dp_no_cartesian inst and p = OR_.dp_no_cartesian ~pool inst in
          RC.equal s.OR_.cost p.OR_.cost && s.OR_.seq = p.OR_.seq))

let prop_dp_parallel_equiv_log =
  QCheck2.Test.make ~name:"parallel dp ≡ sequential dp (log domain, n up to 14)" ~count:12
    gen_big_instance (fun inst ->
      let li = Qo.Instances.log_of_rat inst in
      with_test_pool (fun pool ->
          let s = OL.dp li and p = OL.dp ~pool li in
          Logreal.compare s.OL.cost p.OL.cost = 0 && s.OL.seq = p.OL.seq))

let prop_dp_nc_parallel_equiv_log =
  QCheck2.Test.make ~name:"parallel dp_no_cartesian ≡ sequential (log domain)" ~count:30
    gen_tree_instance (fun inst ->
      let li = Qo.Instances.log_of_rat inst in
      with_test_pool (fun pool ->
          let s = OL.dp_no_cartesian li and p = OL.dp_no_cartesian ~pool li in
          Logreal.compare s.OL.cost p.OL.cost = 0 && s.OL.seq = p.OL.seq))

(* ------------- connected-subgraph DP ≡ lattice DP ------------- *)

(* Ccp.dp_connected promises bit-identity with Opt.dp_no_cartesian —
   cost AND sequence, in both cost domains — on every instance, sparse
   or dense, connected or not. n up to 14 exercises multi-layer tables
   well past the toy range. *)

module CCPR = Qo.Instances.Ccp_rat
module CCPL = Qo.Instances.Ccp_log

let gen_connected_sparse =
  QCheck2.Gen.(
    let* n = int_range 2 14 in
    let* seed = int_range 0 10_000 in
    let* extra = int_range 0 3 in
    let m = Stdlib.min (n * (n - 1) / 2) (n - 1 + extra) in
    let g = Graphlib.Gen.random_connected ~seed ~n ~m in
    return (Qo.Gen_inst.R.over_graph ~seed ~graph:g ()))

let prop_ccp_lattice_rat =
  QCheck2.Test.make ~name:"ccp ≡ dp_no_cartesian bit-identical (rational, sparse n≤14)"
    ~count:60 gen_connected_sparse (fun inst ->
      let a = OR_.dp_no_cartesian inst and b = CCPR.dp_connected inst in
      RC.equal a.OR_.cost b.OR_.cost && a.OR_.seq = b.OR_.seq)

let prop_ccp_lattice_log =
  QCheck2.Test.make ~name:"ccp ≡ dp_no_cartesian bit-identical (log domain, sparse n≤14)"
    ~count:60 gen_connected_sparse (fun inst ->
      let li = Qo.Instances.log_of_rat inst in
      let a = OL.dp_no_cartesian li and b = CCPL.dp_connected li in
      Logreal.compare a.OL.cost b.OL.cost = 0 && a.OL.seq = b.OL.seq)

let prop_ccp_lattice_gnp =
  QCheck2.Test.make ~name:"ccp ≡ dp_no_cartesian on G(n,p), disconnected included"
    ~count:60 gen_instance (fun inst ->
      let a = OR_.dp_no_cartesian inst and b = CCPR.dp_connected inst in
      (RC.is_finite a.OR_.cost = RC.is_finite b.OR_.cost)
      && ((not (RC.is_finite a.OR_.cost)) || RC.equal a.OR_.cost b.OR_.cost)
      && a.OR_.seq = b.OR_.seq)

let prop_ccp_parallel_equiv =
  QCheck2.Test.make ~name:"parallel ccp ≡ sequential ccp (both domains)" ~count:30
    gen_connected_sparse (fun inst ->
      let li = Qo.Instances.log_of_rat inst in
      with_test_pool (fun pool ->
          let sr = CCPR.dp_connected inst and pr = CCPR.dp_connected ~pool inst in
          let sl = CCPL.dp_connected li and pl = CCPL.dp_connected ~pool li in
          RC.equal sr.OR_.cost pr.OR_.cost
          && sr.OR_.seq = pr.OR_.seq
          && Logreal.compare sl.OL.cost pl.OL.cost = 0
          && sl.OL.seq = pl.OL.seq))

let test_ccp_infeasible () =
  (* two components: no cartesian-product-free sequence exists; both
     DPs must agree, and Explain must render the infeasibility instead
     of crashing on seq.(0) *)
  let g = Graphlib.Ugraph.of_edges 4 [ (0, 1); (2, 3) ] in
  let inst = Qo.Gen_inst.R.over_graph ~seed:3 ~graph:g () in
  let a = OR_.dp_no_cartesian inst and b = CCPR.dp_connected inst in
  Alcotest.(check bool) "lattice infeasible" false (RC.is_finite a.OR_.cost);
  Alcotest.(check bool) "ccp infeasible" false (RC.is_finite b.OR_.cost);
  Alcotest.(check int) "lattice seq empty" 0 (Array.length a.OR_.seq);
  Alcotest.(check int) "ccp seq empty" 0 (Array.length b.OR_.seq);
  let rendered = Qo.Explain.Rat.render inst b.OR_.seq in
  Alcotest.(check bool) "render reports infeasibility" true
    (Astring_like.contains rendered "infeasible: no cartesian-product-free join sequence");
  Alcotest.(check bool) "summary reports infeasibility" true
    (Astring_like.contains (Qo.Explain.Rat.summary inst b.OR_.seq) "infeasible")

(* ------------- multi-word subsets + subset convolution ------------- *)

module CVR = Qo.Instances.Conv_rat
module CVL = Qo.Instances.Conv_log

(* The multi-word (Bitset) dp must be bit-identical to the single-word
   dp at every n both admit — including disconnected G(n,p). *)
let prop_ccp_words_equiv =
  QCheck2.Test.make ~name:"multi-word ccp ≡ single-word ccp (both domains)" ~count:40
    gen_connected_sparse (fun inst ->
      let li = Qo.Instances.log_of_rat inst in
      let a = CCPR.dp_connected inst and b = CCPR.dp_connected_words inst in
      let al = CCPL.dp_connected li and bl = CCPL.dp_connected_words li in
      RC.equal a.OR_.cost b.OR_.cost
      && a.OR_.seq = b.OR_.seq
      && Logreal.compare al.OL.cost bl.OL.cost = 0
      && al.OL.seq = bl.OL.seq)

let prop_ccp_words_gnp =
  QCheck2.Test.make ~name:"multi-word ccp ≡ single-word ccp on G(n,p), disconnected included"
    ~count:40 gen_instance (fun inst ->
      let a = CCPR.dp_connected inst and b = CCPR.dp_connected_words inst in
      (RC.is_finite a.OR_.cost = RC.is_finite b.OR_.cost)
      && ((not (RC.is_finite a.OR_.cost)) || RC.equal a.OR_.cost b.OR_.cost)
      && a.OR_.seq = b.OR_.seq)

let prop_conv_lattice_rat =
  QCheck2.Test.make ~name:"conv ≡ dp_no_cartesian ≡ ccp bit-identical (rational)" ~count:60
    gen_connected_sparse (fun inst ->
      let a = OR_.dp_no_cartesian inst
      and b = CCPR.dp_connected inst
      and c = CVR.solve inst in
      RC.equal a.OR_.cost c.OR_.cost && a.OR_.seq = c.OR_.seq
      && RC.equal b.OR_.cost c.OR_.cost && b.OR_.seq = c.OR_.seq)

let prop_conv_lattice_log =
  QCheck2.Test.make ~name:"conv ≡ dp_no_cartesian ≡ ccp bit-identical (log domain)" ~count:60
    gen_connected_sparse (fun inst ->
      let li = Qo.Instances.log_of_rat inst in
      let a = OL.dp_no_cartesian li and c = CVL.solve li in
      Logreal.compare a.OL.cost c.OL.cost = 0 && a.OL.seq = c.OL.seq)

let prop_conv_gnp =
  QCheck2.Test.make ~name:"conv ≡ dp_no_cartesian on G(n,p), disconnected included" ~count:60
    gen_instance (fun inst ->
      let a = OR_.dp_no_cartesian inst and c = CVR.solve inst in
      (RC.is_finite a.OR_.cost = RC.is_finite c.OR_.cost)
      && ((not (RC.is_finite a.OR_.cost)) || RC.equal a.OR_.cost c.OR_.cost)
      && a.OR_.seq = c.OR_.seq)

let prop_conv_parallel_equiv =
  QCheck2.Test.make ~name:"parallel conv ≡ sequential conv (both domains)" ~count:20
    gen_big_instance (fun inst ->
      let li = Qo.Instances.log_of_rat inst in
      with_test_pool (fun pool ->
          let sr = CVR.solve inst and pr = CVR.solve ~pool inst in
          let sl = CVL.solve li and pl = CVL.solve ~pool li in
          RC.equal sr.OR_.cost pr.OR_.cost
          && sr.OR_.seq = pr.OR_.seq
          && Logreal.compare sl.OL.cost pl.OL.cost = 0
          && sl.OL.seq = pl.OL.seq))

(* Instances straddling the old single-word cap (n = 61): every solver
   that admits the size must produce the identical plan, and on chains
   (trees) the IK ordering cross-checks the optimum cost exactly. *)
let test_cap_straddle () =
  List.iter
    (fun n ->
      let inst = Qo.Gen_inst.R.chain ~seed:11 ~n () in
      let b = CCPR.dp_connected inst in
      let w = CCPR.dp_connected_words inst in
      let c = CVR.solve inst in
      let lbl s = Printf.sprintf "chain n=%d: %s" n s in
      Alcotest.(check rc) (lbl "ccp = conv cost") b.OR_.cost c.OR_.cost;
      Alcotest.(check bool) (lbl "ccp = conv seq") true (b.OR_.seq = c.OR_.seq);
      Alcotest.(check rc) (lbl "word = multi-word cost") b.OR_.cost w.OR_.cost;
      Alcotest.(check bool) (lbl "word = multi-word seq") true (b.OR_.seq = w.OR_.seq);
      let cik, _ = IKR.solve inst in
      Alcotest.(check rc) (lbl "IK cross-check") cik b.OR_.cost;
      Alcotest.(check rc) (lbl "plan evaluates to cost") b.OR_.cost (NR.cost inst b.OR_.seq);
      Alcotest.(check int) (lbl "csg count") (n * (n + 1) / 2) (CCPR.csg_count inst))
    [ 60; 61; 62; 100 ]

(* The lifted ceiling end to end: a chain at n = 128 (well past the old
   61 cap) solved exactly by both the multi-word connected DP and the
   sparse-regime convolution, cross-checked against IK. *)
let test_chain_128 () =
  let n = 128 in
  let inst = Qo.Gen_inst.R.chain ~seed:5 ~n () in
  let b = CCPR.dp_connected inst in
  let c = CVR.solve inst in
  Alcotest.(check int) "full-length sequence" n (Array.length b.OR_.seq);
  Alcotest.(check rc) "ccp = conv cost" b.OR_.cost c.OR_.cost;
  Alcotest.(check bool) "ccp = conv seq" true (b.OR_.seq = c.OR_.seq);
  let cik, _ = IKR.solve inst in
  Alcotest.(check rc) "IK cross-check at n=128" cik b.OR_.cost;
  Alcotest.(check int) "csg count at n=128" (n * (n + 1) / 2) (CCPR.csg_count inst)

(* csg_count_bounded: [None] means exactly "over budget" or "over the
   n cap" — a negative limit is a caller bug and raises, instead of
   masquerading as budget exhaustion (the old conflation). *)
let test_csg_count_bounded () =
  let chain n = Qo.Gen_inst.R.over_graph ~seed:1 ~graph:(Graphlib.Gen.path n) () in
  let inst = chain 20 in
  (* exact boundary: 210 connected subsets on a 20-chain *)
  Alcotest.(check (option int)) "at the boundary" (Some 210)
    (CCPR.csg_count_bounded ~limit:210 inst);
  Alcotest.(check (option int)) "one below" None (CCPR.csg_count_bounded ~limit:209 inst);
  Alcotest.(check (option int)) "zero limit" None (CCPR.csg_count_bounded ~limit:0 inst);
  Alcotest.(check (option int)) "generous limit" (Some 210)
    (CCPR.csg_count_bounded ~limit:max_int inst);
  Alcotest.check_raises "negative limit raises"
    (Invalid_argument "Ccp.csg_count_bounded: negative limit -1") (fun () ->
      ignore (CCPR.csg_count_bounded ~limit:(-1) inst));
  Alcotest.check_raises "negative limit raises even above the cap"
    (Invalid_argument "Ccp.csg_count_bounded: negative limit -7") (fun () ->
      ignore (CCPR.csg_count_bounded ~limit:(-7) (chain 300)));
  (* above max_ccp_n: still None (dp_connected would refuse) *)
  Alcotest.(check (option int)) "above the n cap" None
    (CCPR.csg_count_bounded ~limit:max_int (chain 300));
  (* multi-word path (n > 61) honors the same contract *)
  let c100 = chain 100 in
  Alcotest.(check (option int)) "multi-word at the boundary" (Some 5050)
    (CCPR.csg_count_bounded ~limit:5050 c100);
  Alcotest.(check (option int)) "multi-word over budget" None
    (CCPR.csg_count_bounded ~limit:5049 c100);
  Alcotest.(check int) "multi-word csg_count" 5050 (CCPR.csg_count c100)

let test_csg_count () =
  let count g = CCPR.csg_count (Qo.Gen_inst.R.over_graph ~seed:1 ~graph:g ()) in
  (* chain: one connected set per (start, length) pair *)
  Alcotest.(check int) "path 20" (20 * 21 / 2) (count (Graphlib.Gen.path 20));
  (* star: any set containing the center, or a singleton leaf *)
  Alcotest.(check int) "star 5" ((1 lsl 5) + 5) (count (Graphlib.Gen.star 5));
  (* complete graph: every nonempty subset is connected *)
  Alcotest.(check int) "K4" 15 (count (Graphlib.Ugraph.complete 4));
  (* cycle: full set + n arcs of each length 1..n-1 *)
  Alcotest.(check int) "cycle 6" (1 + (6 * 5)) (count (Graphlib.Gen.cycle 6))

(* -------------------- Io round trips -------------------- *)

let prop_io_rat_roundtrip =
  QCheck2.Test.make ~name:"rational instance file round-trip preserves optimum" ~count:40
    QCheck2.Gen.(pair (int_range 2 8) (int_range 0 5000))
    (fun (n, seed) ->
      let inst = Qo.Gen_inst.R.random ~seed ~n ~p:0.5 () in
      let inst' = Qo.Io.parse_rat (Qo.Io.dump_rat inst) in
      Qo.Rat_cost.equal (OR_.dp inst).OR_.cost (OR_.dp inst').OR_.cost
      && Graphlib.Ugraph.equal inst.NR.graph inst'.NR.graph)

let prop_io_log_roundtrip =
  QCheck2.Test.make ~name:"log instance file round-trip preserves costs" ~count:40
    QCheck2.Gen.(pair (int_range 2 8) (int_range 0 5000))
    (fun (n, seed) ->
      let inst = Qo.Gen_inst.L.random ~seed ~n ~p:0.5 () in
      let inst' = Qo.Io.parse_log (Qo.Io.dump_log inst) in
      let z = Array.init n (fun i -> i) in
      Logreal.approx_equal ~tol:1e-9 (NL.cost inst z) (NL.cost inst' z))

(* save/load through an actual file: the loaded instance must re-dump
   to the identical byte string (scalar formatting is canonical in both
   domains: exact rationals, 2^%.17g exponents). *)
let with_temp_file f =
  let path = Filename.temp_file "qopt_test" ".qon" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let prop_io_rat_file_roundtrip =
  QCheck2.Test.make ~name:"save_rat/load_rat file round-trip is byte-exact" ~count:25
    QCheck2.Gen.(pair (int_range 2 8) (int_range 0 5000))
    (fun (n, seed) ->
      let inst = Qo.Gen_inst.R.random ~seed ~n ~p:0.5 () in
      with_temp_file (fun path ->
          Qo.Io.save_rat path inst;
          Qo.Io.dump_rat (Qo.Io.load_rat path) = Qo.Io.dump_rat inst))

let prop_io_log_file_roundtrip =
  QCheck2.Test.make ~name:"save_log/load_log file round-trip is byte-exact" ~count:25
    QCheck2.Gen.(pair (int_range 2 8) (int_range 0 5000))
    (fun (n, seed) ->
      let inst = Qo.Gen_inst.L.random ~seed ~n ~p:0.5 () in
      with_temp_file (fun path ->
          Qo.Io.save_log path inst;
          Qo.Io.dump_log (Qo.Io.load_log path) = Qo.Io.dump_log inst))

(* Extreme scalars: huge/tiny log exponents, full-17-digit mantissas,
   big rational numerators, and w at its exact bounds (t*s and t) must
   all survive the file format losslessly. *)
let test_io_extremes () =
  let lg = Graphlib.Ugraph.of_edges 2 [ (0, 1) ] in
  (* log domain: exponents at ±1e9 and floats needing all 17 digits *)
  let t0 = Logreal.of_log2 1e9 and t1 = Logreal.of_log2 (-1e9) in
  let s = Logreal.of_float 0.1 in
  let sel = [| [| Logreal.one; s |]; [| s; Logreal.one |] |] in
  let sizes = [| t0; t1 |] in
  (* w_01 at the lower bound t*s exactly; w_10 at the upper bound t *)
  let w = [| [| t0; Logreal.mul t0 s |]; [| t1; t1 |] |] in
  let module L = Qo.Instances.Nl_log in
  let inst = L.make ~graph:lg ~sel ~sizes ~w in
  with_temp_file (fun path ->
      Qo.Io.save_log path inst;
      let inst' = Qo.Io.load_log path in
      Alcotest.(check string) "log dump byte-exact" (Qo.Io.dump_log inst)
        (Qo.Io.dump_log inst');
      (* bit-exact exponents, not just approx *)
      Alcotest.(check bool) "sizes bit-exact" true
        (Logreal.to_log2 inst'.L.sizes.(0) = 1e9 && Logreal.to_log2 inst'.L.sizes.(1) = -1e9);
      Alcotest.(check bool) "sel bit-exact" true
        (Logreal.compare inst'.L.sel.(0).(1) s = 0);
      Alcotest.(check bool) "w boundary bit-exact" true
        (Logreal.compare inst'.L.w.(0).(1) (Logreal.mul t0 s) = 0
        && Logreal.compare inst'.L.w.(1).(0) t1 = 0));
  (* rational domain: numerators far past 2^63, w on its exact bounds *)
  let big = RC.of_bigq (Bignum.Bigq.of_string "123456789012345678901234567890123456789") in
  let tiny = RC.of_bigq (Bignum.Bigq.of_string "1/987654321987654321987654321") in
  let sel_r = [| [| RC.one; tiny |]; [| tiny; RC.one |] |] in
  let sizes_r = [| big; RC.of_int 7 |] in
  let w_r = [| [| RC.zero; RC.mul big tiny |]; [| RC.of_int 7; RC.zero |] |] in
  let inst_r = NR.make ~graph:lg ~sel:sel_r ~sizes:sizes_r ~w:w_r in
  with_temp_file (fun path ->
      Qo.Io.save_rat path inst_r;
      let inst' = Qo.Io.load_rat path in
      Alcotest.(check string) "rat dump byte-exact" (Qo.Io.dump_rat inst_r)
        (Qo.Io.dump_rat inst');
      Alcotest.(check rc) "big size exact" big inst'.NR.sizes.(0);
      Alcotest.(check rc) "w at t*s bound exact" (RC.mul big tiny) inst'.NR.w.(0).(1))

let test_io_errors () =
  Alcotest.check_raises "bad line" (Invalid_argument "Qo.Io.parse: line 2: unrecognized \"junk\"")
    (fun () -> ignore (Qo.Io.parse_rat "qon 1\njunk\n"));
  Alcotest.check_raises "missing n" (Invalid_argument "Qo.Io.parse: missing or invalid n")
    (fun () -> ignore (Qo.Io.parse_rat "qon 1\n"))

(* Malformed files must fail with a Qo.Io.parse error, never an array
   bounds crash; every rejection below used to either crash [build] or
   silently corrupt the instance. *)
let test_io_malformed () =
  let base =
    "qon 1\nn 3\nsize 0 10\nsize 1 10\nsize 2 10\n\
     edge 0 1 sel 1/2 wij 5 wji 5\n"
  in
  let expect_parse_error name text =
    match Qo.Io.parse_rat text with
    | exception Invalid_argument msg ->
        Alcotest.(check bool)
          (name ^ ": error is a parse error (" ^ msg ^ ")")
          true
          (String.length msg >= 12 && String.sub msg 0 12 = "Qo.Io.parse:")
    | _ -> Alcotest.fail (name ^ ": malformed input accepted")
  in
  (* out-of-range / self-loop edges crashed with Index out of bounds *)
  expect_parse_error "edge endpoint out of range" (base ^ "edge 0 99 sel 1/2 wij 5 wji 5\n");
  expect_parse_error "negative endpoint" (base ^ "edge -1 2 sel 1/2 wij 5 wji 5\n");
  expect_parse_error "self-loop edge" (base ^ "edge 2 2 sel 1/2 wij 5 wji 5\n");
  expect_parse_error "duplicate edge" (base ^ "edge 1 0 sel 1/2 wij 5 wji 5\n");
  (* duplicate size lines defeated the size-count check *)
  expect_parse_error "duplicate size line" (base ^ "size 1 20\n");
  expect_parse_error "size vertex out of range" ("qon 1\nn 2\nsize 0 10\nsize 7 10\n");
  expect_parse_error "missing header" "n 2\nsize 0 10\nsize 1 10\n";
  expect_parse_error "unsupported version" "qon 2\nn 2\nsize 0 10\nsize 1 10\n";
  (* a second header used to be silently accepted, as was a header
     arriving after data lines — both now fail with the line number *)
  Alcotest.check_raises "duplicate header"
    (Invalid_argument "Qo.Io.parse: line 7: duplicate \"qon 1\" header") (fun () ->
      ignore (Qo.Io.parse_rat (base ^ "qon 1\n")));
  Alcotest.check_raises "header after data"
    (Invalid_argument "Qo.Io.parse: line 1: data line before the \"qon 1\" header") (fun () ->
      ignore (Qo.Io.parse_rat "n 3\nqon 1\nsize 0 10\nsize 1 10\nsize 2 10\n"));
  expect_parse_error "duplicate n" (base ^ "n 3\n");
  expect_parse_error "bad integer" "qon 1\nn x\n";
  expect_parse_error "bad scalar" "qon 1\nn 1\nsize 0 banana\n";
  (* the well-formed base still parses *)
  Alcotest.(check int) "well-formed base parses" 3 (Qo.Io.parse_rat base).NR.n

(* Regression: a hostile "n" line used to reach Array.make unchecked —
   "n 99999999999" was an OOM kill / Out_of_memory crash instead of a
   parse error, and "n 0"/"n -3" corrupted downstream checks. The
   declared count is now validated against Io.max_parse_n before any
   allocation. *)
let test_io_hostile_n () =
  let expect_parse_error name text =
    match Qo.Io.parse_rat text with
    | exception Invalid_argument msg ->
        Alcotest.(check bool)
          (name ^ ": error is a parse error (" ^ msg ^ ")")
          true
          (String.length msg >= 12 && String.sub msg 0 12 = "Qo.Io.parse:")
    | _ -> Alcotest.fail (name ^ ": hostile n accepted")
  in
  expect_parse_error "huge n" "qon 1\nn 99999999999\nsize 0 10\n";
  expect_parse_error "n just above the cap"
    (Printf.sprintf "qon 1\nn %d\n" (Qo.Io.max_parse_n + 1));
  expect_parse_error "zero n" "qon 1\nn 0\nsize 0 10\n";
  expect_parse_error "negative n" "qon 1\nn -3\n";
  (* the rejection carries the line number and the cap *)
  Alcotest.check_raises "range message"
    (Invalid_argument
       (Printf.sprintf "Qo.Io.parse: line 2: n 99999999999 out of range [1,%d]"
          Qo.Io.max_parse_n))
    (fun () -> ignore (Qo.Io.parse_rat "qon 1\nn 99999999999\n"))

(* Regression: [scalar_of] used to catch [with _], so a pathological
   literal that blew past the parser with Out_of_memory/Stack_overflow
   would be misreported as "invalid scalar" (or worse, swallowed). It
   now catches only Failure/Invalid_argument; a long-but-valid literal
   parses exactly and a long-but-junk one is a line-numbered error. *)
let test_io_long_scalar () =
  let digits = String.make 4000 '9' in
  let text = "qon 1\nn 1\nsize 0 " ^ digits ^ "/7\n" in
  let inst = Qo.Io.parse_rat text in
  Alcotest.(check string) "4000-digit rational round-trips byte-exact"
    (Qo.Io.dump_rat inst)
    (Qo.Io.dump_rat (Qo.Io.parse_rat (Qo.Io.dump_rat inst)));
  match Qo.Io.parse_rat ("qon 1\nn 1\nsize 0 " ^ digits ^ "x\n") with
  | exception Invalid_argument msg ->
      Alcotest.(check bool)
        ("long junk literal is a line-3 parse error (" ^ String.sub msg 0 30 ^ "...)")
        true
        (String.length msg >= 27 && String.sub msg 0 27 = "Qo.Io.parse: line 3: invali")
  | _ -> Alcotest.fail "long junk literal accepted"

(* Regression: the log-domain scalar reader accepted non-finite input —
   "2^nan" became a NaN exponent that silently poisoned every cost
   comparison downstream (NaN compares false with everything), and
   "inf"/"2^inf" built instances no optimizer could rank. All
   non-finite scalars are now line-numbered parse errors in the log
   domain; the rational domain keeps its documented "inf". *)
let test_io_nonfinite_log () =
  let line3 payload = "qon 1\nn 2\nsize 0 " ^ payload ^ "\nsize 1 2^4\n" in
  let expect_rejected payload =
    Alcotest.check_raises ("log rejects " ^ payload)
      (Invalid_argument (Printf.sprintf "Qo.Io.parse: line 3: invalid scalar %S" payload))
      (fun () -> ignore (Qo.Io.parse_log (line3 payload)))
  in
  expect_rejected "nan";
  expect_rejected "2^nan";
  expect_rejected "inf";
  expect_rejected "2^inf";
  expect_rejected "-inf";
  (* finite log scalars still parse and round-trip *)
  let ok =
    "qon 1\nn 2\nsize 0 2^3\nsize 1 2^4\nedge 0 1 sel 2^-1 wij 2^2 wji 2^3\n"
  in
  let inst = Qo.Io.parse_log ok in
  Alcotest.(check string) "finite log instance round-trips"
    (Qo.Io.dump_log inst)
    (Qo.Io.dump_log (Qo.Io.parse_log (Qo.Io.dump_log inst)));
  (* the rational domain's documented "inf" is untouched *)
  let rat = Qo.Io.parse_rat "qon 1\nn 1\nsize 0 inf\n" in
  Alcotest.(check bool) "rat inf still accepted" false
    (RC.is_finite rat.NR.sizes.(0))

(* ---------------- iterative improvement: move neighborhood ---------------- *)

(* [apply_move] semantics: remove position i, reinsert at j, in both
   directions; applying the inverse restores the array. *)
let test_apply_move () =
  let check_arr name expected actual =
    Alcotest.(check (array int)) name expected actual
  in
  let a = [| 0; 1; 2; 3; 4 |] in
  OR_.apply_move a 1 3;
  check_arr "forward move" [| 0; 2; 3; 1; 4 |] a;
  OR_.apply_move a 3 1;
  check_arr "inverse restores" [| 0; 1; 2; 3; 4 |] a;
  OR_.apply_move a 4 0;
  check_arr "backward move" [| 4; 0; 1; 2; 3 |] a;
  OR_.apply_move a 0 4;
  check_arr "inverse restores again" [| 0; 1; 2; 3; 4 |] a;
  OR_.apply_move a 2 2;
  check_arr "no-op move" [| 0; 1; 2; 3; 4 |] a

(* Same seed, same plan — the move/swap mix draws from the seeded state
   only, so II stays reproducible. *)
let prop_ii_deterministic =
  QCheck2.Test.make ~name:"iterative_improvement is seed-deterministic" ~count:30
    gen_instance (fun inst ->
      let p1 = OR_.iterative_improvement ~seed:42 inst in
      let p2 = OR_.iterative_improvement ~seed:42 inst in
      RC.equal p1.OR_.cost p2.OR_.cost && p1.OR_.seq = p2.OR_.seq)

(* II explores moves and swaps but must always return a valid
   permutation whose cost is consistent and bounded below by the DP
   optimum. *)
let prop_ii_valid_and_bounded =
  QCheck2.Test.make ~name:"iterative_improvement: valid permutation, cost >= dp" ~count:30
    gen_instance (fun inst ->
      let p = OR_.iterative_improvement ~seed:7 inst in
      let n = NR.n inst in
      let seen = Array.make n false in
      Array.iter (fun v -> seen.(v) <- true) p.OR_.seq;
      Array.length p.OR_.seq = n
      && Array.for_all Fun.id seen
      && RC.equal p.OR_.cost (NR.cost inst p.OR_.seq)
      && RC.compare (OR_.dp inst).OR_.cost p.OR_.cost <= 0)

let () =
  Alcotest.run "qo"
    [
      ( "cost model",
        [
          Alcotest.test_case "hand example" `Quick test_hand_example;
          Alcotest.test_case "cartesian products" `Quick test_cartesian_detection;
          Alcotest.test_case "validation" `Quick test_validation_errors;
        ] );
      ( "optimizers",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_dp_equals_exhaustive;
            prop_heuristics_upper_bound;
            prop_dp_no_cartesian_dominates;
            prop_dp_plan_cost_consistent;
          ] );
      ( "iterative improvement",
        [ Alcotest.test_case "apply_move semantics" `Quick test_apply_move ]
        @ List.map QCheck_alcotest.to_alcotest
            [ prop_ii_deterministic; prop_ii_valid_and_bounded ] );
      ( "model properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_size_set_invariance; prop_log_matches_rational; prop_profile_sums; prop_uniform_instance ] );
      ( "ik",
        List.map QCheck_alcotest.to_alcotest
          [ prop_ik_tree_optimal; prop_ik_tree_optimal_log ] );
      ( "parallel dp",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_dp_parallel_equiv_rat;
            prop_dp_parallel_equiv_rat_big;
            prop_dp_nc_parallel_equiv_rat;
            prop_dp_parallel_equiv_log;
            prop_dp_nc_parallel_equiv_log;
          ] );
      ( "gen_inst + explain",
        [ Alcotest.test_case "explain rendering" `Quick test_explain_render ]
        @ List.map QCheck_alcotest.to_alcotest
            [ prop_gen_inst_valid; prop_gen_inst_deterministic ] );
      ( "connected dp",
        [
          Alcotest.test_case "disconnected graph is infeasible" `Quick test_ccp_infeasible;
          Alcotest.test_case "csg counts on known families" `Quick test_csg_count;
          Alcotest.test_case "csg_count_bounded contract" `Quick test_csg_count_bounded;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [
              prop_ccp_lattice_rat;
              prop_ccp_lattice_log;
              prop_ccp_lattice_gnp;
              prop_ccp_parallel_equiv;
              prop_ccp_words_equiv;
              prop_ccp_words_gnp;
            ] );
      ( "subset convolution",
        [
          Alcotest.test_case "plans straddling the old n=61 cap" `Quick test_cap_straddle;
          Alcotest.test_case "chain n=128 past the lifted ceiling" `Slow test_chain_128;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [
              prop_conv_lattice_rat;
              prop_conv_lattice_log;
              prop_conv_gnp;
              prop_conv_parallel_equiv;
            ] );
      ( "io",
        [
          Alcotest.test_case "parse errors" `Quick test_io_errors;
          Alcotest.test_case "malformed inputs" `Quick test_io_malformed;
          Alcotest.test_case "extreme scalars round-trip" `Quick test_io_extremes;
          Alcotest.test_case "hostile n lines" `Quick test_io_hostile_n;
          Alcotest.test_case "pathologically long scalar" `Quick test_io_long_scalar;
          Alcotest.test_case "non-finite log scalars" `Quick test_io_nonfinite_log;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [
              prop_io_rat_roundtrip;
              prop_io_log_roundtrip;
              prop_io_rat_file_roundtrip;
              prop_io_log_file_roundtrip;
            ] );
    ]
