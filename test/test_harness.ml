(* The experiment suite doubles as an integration test: every check in
   E1..E10 must pass. Runs the full harness quietly (~1-2 minutes). *)

(* Regression for the --jobs plumbing: a single experiment run with
   jobs > 1 must produce exactly the checks of the sequential run (the
   parallel DP layers are bit-identical, so label/ok/detail all agree).
   Before the fix, single-experiment runs dropped the jobs argument on
   the floor and silently ran sequentially. *)
let jobs_regression () =
  let strip c =
    (c.Harness.Experiments.label, c.Harness.Experiments.ok, c.Harness.Experiments.detail)
  in
  let seq = List.map strip (Harness.Experiments.e14_tree_frontier ~quiet:true ()) in
  let par = List.map strip (Harness.Experiments.e14_tree_frontier ~quiet:true ~jobs:2 ()) in
  Alcotest.(check bool) "e14 with --jobs 2 matches sequential run" true (seq = par)

let () =
  let results = Harness.Experiments.all ~quiet:true () in
  let total = List.fold_left (fun acc (_, cs) -> acc + List.length cs) 0 results in
  let fails = Harness.Experiments.failures results in
  let jobs_cases =
    [ ("jobs plumbing", [ Alcotest.test_case "e14 ~jobs:2 ≡ sequential" `Slow jobs_regression ]) ]
  in
  let cases =
    List.map
      (fun (name, checks) ->
        ( name,
          List.map
            (fun c ->
              Alcotest.test_case c.Harness.Experiments.label `Slow (fun () ->
                  Alcotest.(check bool)
                    (c.Harness.Experiments.label ^ " | " ^ c.Harness.Experiments.detail)
                    true c.Harness.Experiments.ok))
            checks ))
      results
  in
  Printf.printf "experiment checks: %d total, %d failing\n%!" total (List.length fails);
  Alcotest.run "experiments" (cases @ jobs_cases)
