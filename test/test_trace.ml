(* Tests for the workload-trace subsystem: Zipf alias sampling,
   deterministic generation, provenance, probe injection, replay
   accounting, jobs-invariance, hostile-tail error coverage, the
   hit-rate-vs-skew signal, and the replay report schema. *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ---------------- Zipf sampler ---------------- *)

let draws ~seed ~s ~n k =
  let z = Trace.Zipf.create ~s ~n in
  let st = Random.State.make [| seed |] in
  List.init k (fun _ -> Trace.Zipf.sample z st)

let test_zipf_range_and_determinism () =
  let d1 = draws ~seed:42 ~s:1.1 ~n:16 1000 in
  let d2 = draws ~seed:42 ~s:1.1 ~n:16 1000 in
  Alcotest.(check (list int)) "same seed, same draws" d1 d2;
  List.iter (fun k -> Alcotest.(check bool) "in range" true (k >= 0 && k < 16)) d1;
  let d3 = draws ~seed:43 ~s:1.1 ~n:16 1000 in
  Alcotest.(check bool) "different seed, different draws" true (d1 <> d3)

let test_zipf_uniform () =
  let z = Trace.Zipf.create ~s:0.0 ~n:8 in
  for k = 0 to 7 do
    Alcotest.(check (float 1e-12)) "s=0 is uniform" 0.125 (Trace.Zipf.pmf z k)
  done

let test_zipf_pmf_sums_to_one () =
  let z = Trace.Zipf.create ~s:1.3 ~n:64 in
  let total = ref 0.0 in
  for k = 0 to 63 do
    total := !total +. Trace.Zipf.pmf z k
  done;
  Alcotest.(check (float 1e-9)) "pmf normalized" 1.0 !total

(* Empirical frequencies over 10^5 draws match the exact pmf within
   3 sigma-ish absolute tolerance: the alias table really encodes the
   distribution it claims (the classic alias-method bug — swapped
   column/alias probabilities — fails this loudly). *)
let test_zipf_empirical () =
  let n = 32 and k = 100_000 in
  let z = Trace.Zipf.create ~s:1.1 ~n in
  let st = Random.State.make [| 7 |] in
  let counts = Array.make n 0 in
  for _ = 1 to k do
    let r = Trace.Zipf.sample z st in
    counts.(r) <- counts.(r) + 1
  done;
  for r = 0 to n - 1 do
    let emp = float_of_int counts.(r) /. float_of_int k in
    let exact = Trace.Zipf.pmf z r in
    if Float.abs (emp -. exact) > 0.01 then
      Alcotest.failf "rank %d: empirical %.4f vs pmf %.4f" r emp exact
  done

let test_zipf_invalid () =
  Alcotest.check_raises "n=0" (Invalid_argument "Zipf.create: n must be positive")
    (fun () -> ignore (Trace.Zipf.create ~s:1.0 ~n:0))

(* ---------------- generation ---------------- *)

let small =
  {
    Trace.requests = 200;
    seed = 11;
    skew = 0.9;
    pool_size = 48;
    templates = 2;
    drift_every = 40;
    burst = 3;
    hostile_pct = 10;
  }

let test_generate_deterministic () =
  let t1 = Trace.generate small and t2 = Trace.generate small in
  Alcotest.(check bool) "same params, same bytes" true (t1 = t2);
  let t3 = Trace.generate { small with Trace.seed = 12 } in
  Alcotest.(check bool) "different seed, different bytes" true (t1 <> t3)

let test_generate_streaming_agrees () =
  let b = Buffer.create 4096 in
  Trace.emit small (Buffer.add_string b);
  Alcotest.(check bool)
    "emit and generate produce the same bytes" true
    (Buffer.contents b = Trace.generate small)

let test_provenance_roundtrip () =
  let kv = Trace.parse_provenance (Trace.generate small) in
  let get k = try List.assoc k kv with Not_found -> Alcotest.failf "missing key %s" k in
  Alcotest.(check string) "seed" "11" (get "seed");
  Alcotest.(check string) "requests" "200" (get "requests");
  Alcotest.(check string) "skew" "0.900" (get "skew");
  Alcotest.(check string) "pool" "48" (get "pool");
  Alcotest.(check (list (pair string string)))
    "no header, no pairs" [] (Trace.parse_provenance "request algo=dp\n")

let test_request_count () =
  let t = Trace.generate small in
  let headers =
    List.filter
      (fun l -> String.length l >= 8 && String.sub l 0 8 = "request ")
      (String.split_on_char '\n' t)
  in
  (* junk hostile lines are request-shaped too ("noise ..."), so the
     request-header count is <= requests, and the replay accounting
     below checks the exact total *)
  Alcotest.(check bool)
    "request headers emitted" true
    (List.length headers > 0 && List.length headers <= small.Trace.requests)

(* ---------------- replay ---------------- *)

let test_replay_accounting () =
  let t = Trace.generate small in
  let _out, st, seconds = Trace.replay ~probe_every:50 t in
  Alcotest.(check int) "every line accounted" small.Trace.requests st.Serve.requests;
  Alcotest.(check int) "ok + errors + rejected = requests" small.Trace.requests
    (st.Serve.ok + st.Serve.errors + st.Serve.rejected);
  Alcotest.(check bool) "cache hits occur under skew" true (st.Serve.cache_hits > 0);
  Alcotest.(check bool) "hostile tail produces errors" true (st.Serve.errors > 0);
  Alcotest.(check bool) "wall clock measured" true (seconds > 0.0)

let test_probes_do_not_perturb () =
  let t = Trace.generate small in
  let out_probed, st1, _ = Trace.replay ~probe_every:25 t in
  let out_plain, st2, _ = Trace.replay ~probe_every:0 t in
  let body_probed, controls = Serve.split_control out_probed in
  let body_plain, no_controls = Serve.split_control out_plain in
  Alcotest.(check bool) "probes answered" true (List.length controls > 0);
  Alcotest.(check int) "no probes, no controls" 0 (List.length no_controls);
  Alcotest.(check bool) "probes never perturb responses" true (body_probed = body_plain);
  Alcotest.(check bool)
    "probes never perturb stats" true
    (Trace.stats_key st1 = Trace.stats_key st2)

let test_jobs_invariance () =
  let t = Trace.generate small in
  let ok, diag = Trace.check_identity ~probe_every:50 ~jobs:2 t in
  if not ok then Alcotest.failf "jobs=1 vs jobs=2 diverged: %s" diag

let test_hostile_codes () =
  let p =
    {
      Trace.requests = 64;
      seed = 5;
      skew = 0.5;
      pool_size = 8;
      templates = 0;
      drift_every = 40;
      burst = 1;
      hostile_pct = 100;
    }
  in
  let out, st, _ = Trace.replay ~probe_every:0 (Trace.generate p) in
  Alcotest.(check bool) "junk lines rejected" true (contains out "code=bad-request");
  Alcotest.(check bool) "payload parse errors" true (contains out "code=parse");
  Alcotest.(check bool) "admission-cap violations" true (contains out "code=too-large");
  Alcotest.(check bool) "hostile majority errors" true (st.Serve.errors > 32)

(* The headline signal: with a fixed pool larger than the cache,
   hotter skew concentrates traffic on fewer instances and the hit
   rate must rise. *)
let test_hit_rate_rises_with_skew () =
  let config = { Serve.default_config with Serve.cache_capacity = 32 } in
  let rate skew =
    let p =
      {
        Trace.requests = 1500;
        seed = 9;
        skew;
        pool_size = 64;
        templates = 0;
        drift_every = 100;
        burst = 1;
        hostile_pct = 0;
      }
    in
    let _out, st, _ = Trace.replay ~config ~probe_every:0 (Trace.generate p) in
    float_of_int st.Serve.cache_hits
    /. float_of_int (st.Serve.cache_hits + st.Serve.cache_misses)
  in
  let cold = rate 0.2 and hot = rate 1.4 in
  if not (hot > cold) then
    Alcotest.failf "hit rate did not rise with skew: %.4f (s=0.2) vs %.4f (s=1.4)" cold
      hot

(* ---------------- report ---------------- *)

let test_report_schema () =
  let t = Trace.generate small in
  let out, st, seconds = Trace.replay ~probe_every:50 t in
  let s =
    Obs.Json.to_string
      (Trace.report_json ~jobs:1 ~trace:t ~out ~seconds ~identity:true st)
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "report has %s" needle) true
        (contains s needle))
    [
      "qopt-trace-report";
      "schema_version";
      "cache_hit_rate";
      "coalesced";
      "cache_entries";
      "errors_by_code";
      "requests_per_s";
      "stage_ms";
      "identity_jobs_invariant";
      "\"trace\"";
    ];
  let masked =
    Obs.Json.to_string (Trace.report_json_masked ~jobs:1 ~trace:t ~out ~seconds st)
  in
  Alcotest.(check bool) "masking nulls wall-clock fields" true (contains masked "null");
  Alcotest.(check bool)
    "masked fields cover serve timing plus replay throughput" true
    (List.mem "requests_per_s" Trace.report_masked_fields
    && List.length Trace.report_masked_fields > List.length Serve.timing_fields)

let () =
  Alcotest.run "trace"
    [
      ( "zipf",
        [
          Alcotest.test_case "range+determinism" `Quick test_zipf_range_and_determinism;
          Alcotest.test_case "uniform" `Quick test_zipf_uniform;
          Alcotest.test_case "pmf normalized" `Quick test_zipf_pmf_sums_to_one;
          Alcotest.test_case "empirical frequencies" `Quick test_zipf_empirical;
          Alcotest.test_case "invalid args" `Quick test_zipf_invalid;
        ] );
      ( "generate",
        [
          Alcotest.test_case "deterministic" `Quick test_generate_deterministic;
          Alcotest.test_case "streaming agrees" `Quick test_generate_streaming_agrees;
          Alcotest.test_case "provenance roundtrip" `Quick test_provenance_roundtrip;
          Alcotest.test_case "request count" `Quick test_request_count;
        ] );
      ( "replay",
        [
          Alcotest.test_case "accounting" `Quick test_replay_accounting;
          Alcotest.test_case "probes do not perturb" `Quick test_probes_do_not_perturb;
          Alcotest.test_case "jobs invariance" `Quick test_jobs_invariance;
          Alcotest.test_case "hostile codes" `Quick test_hostile_codes;
          Alcotest.test_case "hit rate rises with skew" `Quick
            test_hit_rate_rises_with_skew;
        ] );
      ( "report",
        [ Alcotest.test_case "schema" `Quick test_report_schema ] );
    ]
